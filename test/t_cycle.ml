(* The full mark/restructure cycle driven through the simulator on
   hand-built graphs (no reduction program): collection, deadlock
   reports, priority persistence, task purging. *)
open Dgr_graph
open Dgr_sim
open Dgr_core

let empty_registry = Dgr_reduction.Template.create_registry ()

let engine_for ?(deadlock_every = 1) ?(idle_gap = 5) g =
  let config =
    Engine.Config.make ~num_pes:(Graph.num_pes g)
      ~gc:(Engine.Concurrent { deadlock_every; idle_gap })
      ~heap_size:None ()
  in
  Engine.create ~config g empty_registry

let run_cycles e n =
  let target t =
    match Engine.cycle t with
    | Some c -> Cycle.cycles_completed c >= n
    | None -> true
  in
  let (_ : int) = Engine.run ~max_steps:100_000 ~stop:target e in
  Option.get (Engine.cycle e)

let test_collects_unreachable () =
  let g = Graph.create ~num_pes:2 () in
  let live = Builder.chain g 5 in
  Graph.set_root g live;
  let ring = Builder.cycle g 6 in
  ignore ring;
  let before = Graph.live_count g in
  let e = engine_for g in
  let c = run_cycles e 1 in
  Alcotest.(check int) "garbage collected" (before - 5) (Cycle.total_garbage_collected c);
  Alcotest.(check int) "free list refilled" (before - 5) (Graph.free_count g);
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_live_never_collected_across_cycles () =
  let g = Graph.create ~num_pes:4 () in
  let root = Builder.binary_tree g ~depth:4 in
  Graph.set_root g root;
  let e = engine_for g in
  let (_ : Cycle.t) = run_cycles e 5 in
  Alcotest.(check int) "all live survive 5 cycles" 31 (Graph.live_count g)

let test_deadlock_reported_only_with_mt () =
  let build () =
    let s = Dgr_harness.Scenarios.fig_3_1 () in
    (s.Dgr_harness.Scenarios.graph, s.Dgr_harness.Scenarios.x)
  in
  (* deadlock_every = 0: M_T never runs, nothing is ever reported *)
  let g, _x = build () in
  Vertex.add_requester (Graph.vertex g (Graph.root g)) None ~demand:Demand.Vital
    ~key:(Graph.root g);
  Vertex.request_arg
    (Graph.vertex g (Graph.root g))
    (List.hd (Graph.children g (Graph.root g)))
    Demand.Vital;
  let e = engine_for ~deadlock_every:0 g in
  let c = run_cycles e 3 in
  Alcotest.(check bool) "no M_T, no deadlock report" true
    (Vid.Set.is_empty (Cycle.deadlocked_ever c));
  (* deadlock_every = 1: found in the first cycle *)
  let g, x = build () in
  Vertex.add_requester (Graph.vertex g (Graph.root g)) None ~demand:Demand.Vital
    ~key:(Graph.root g);
  Vertex.request_arg
    (Graph.vertex g (Graph.root g))
    (List.hd (Graph.children g (Graph.root g)))
    Demand.Vital;
  (* x vitally requests itself and the constant *)
  let vx = Graph.vertex g x in
  List.iter (fun c -> Vertex.request_arg vx c Demand.Vital) (Vertex.args vx);
  Vertex.add_requester vx (Some x) ~demand:Demand.Vital ~key:x;
  let e = engine_for ~deadlock_every:1 g in
  let c = run_cycles e 2 in
  Alcotest.(check bool) "x reported deadlocked" true
    (Vid.Set.mem x (Cycle.deadlocked_ever c))

let test_sched_prior_persists () =
  let g = Graph.create () in
  let leaf = Builder.add g (Label.Int 1) [] in
  let root = Builder.add_root g Label.If [ leaf ] in
  Vertex.request_arg (Graph.vertex g root) leaf Demand.Eager;
  let e = engine_for g in
  let (_ : Cycle.t) = run_cycles e 1 in
  Alcotest.(check int) "root classified vital" 3 (Vertex.sched_prior (Graph.vertex g root));
  Alcotest.(check int) "leaf classified eager" 2 (Vertex.sched_prior (Graph.vertex g leaf));
  Alcotest.(check bool) "planes reset between cycles" true
    (Plane.unmarked (Vertex.mr (Graph.vertex g root))
    || Plane.transient (Vertex.mr (Graph.vertex g root))
    || Plane.marked (Vertex.mr (Graph.vertex g root)))

let test_irrelevant_tasks_purged () =
  let g = Graph.create ~num_pes:1 () in
  let live = Builder.chain g 3 in
  Graph.set_root g live;
  (* a ring of indirections: a request injected into it forwards forever —
     §3.2's non-terminating irrelevant workload in miniature *)
  let junk = Builder.cycle g 3 in
  let e = engine_for g in
  Engine.inject e (Dgr_task.Task.request junk Demand.Eager);
  let (_ : Cycle.t) = run_cycles e 3 in
  Alcotest.(check bool) "circulating irrelevant task expunged" true
    ((Engine.metrics e).Metrics.tasks_purged >= 1);
  Alcotest.(check bool) "junk ring collected" true (Vertex.free (Graph.vertex g junk));
  (* and the machine actually quiesces once the task is gone *)
  let still_pending =
    List.exists Dgr_task.Task.is_reduction (Engine.pending_tasks e)
  in
  Alcotest.(check bool) "no reduction tasks survive" false still_pending

let test_start_cycle_twice_rejected () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 1) [] in
  let mut = Mutator.create ~spawn:(fun _ -> ()) g in
  let env =
    {
      Cycle.spawn_mark = (fun _ -> ());
      pes = 1;
      iter_pe_endpoints = (fun _ _ -> ());
      purge_tasks = (fun _ -> 0);
      reprioritize = (fun () -> 0);
      each_home = (fun f -> f 0);
      now = (fun () -> 0);
    }
  in
  let c = Cycle.create g mut env in
  Cycle.start_cycle c;
  Alcotest.check_raises "double start"
    (Invalid_argument "Cycle.start_cycle: cycle already in progress") (fun () ->
      Cycle.start_cycle c)

let test_mt_before_mr_order () =
  (* With deadlock detection on, the first phase must be Mark_tasks. *)
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 1) [] in
  let mut = Mutator.create ~spawn:(fun _ -> ()) g in
  let spawned = ref [] in
  let env =
    {
      Cycle.spawn_mark = (fun m -> spawned := m :: !spawned);
      pes = 1;
      iter_pe_endpoints =
        (fun _pe f ->
          Dgr_task.Task.iter_reduction_endpoints f
            (Dgr_task.Task.Request
               { src = None; dst = Graph.root g; demand = Demand.Vital;
                 key = Graph.root g }));
      purge_tasks = (fun _ -> 0);
      reprioritize = (fun () -> 0);
      each_home = (fun f -> f 0);
      now = (fun () -> 0);
    }
  in
  let c = Cycle.create ~deadlock_every:1 g mut env in
  Cycle.start_cycle c;
  Alcotest.(check bool) "starts in Mark_tasks" true (Cycle.phase c = Cycle.Mark_tasks);
  (match !spawned with
  | [ Dgr_task.Task.Mark3 _ ] -> ()
  | _ -> Alcotest.fail "expected one mark3 seed");
  Alcotest.(check bool) "M_T run exposed" true (Cycle.run_for_plane c Plane.MT <> None);
  Alcotest.(check bool) "no M_R run yet" true (Cycle.run_for_plane c Plane.MR = None)

let test_cycle_with_empty_graph () =
  let g = Graph.create () in
  Graph.preallocate g 4;
  let e = engine_for g in
  let c = run_cycles e 1 in
  Alcotest.(check int) "nothing to collect" 0 (Cycle.total_garbage_collected c)

let suite =
  [
    Alcotest.test_case "collects unreachable clusters" `Quick test_collects_unreachable;
    Alcotest.test_case "live data survives repeated cycles" `Quick
      test_live_never_collected_across_cycles;
    Alcotest.test_case "deadlock needs M_T (and finds it)" `Quick
      test_deadlock_reported_only_with_mt;
    Alcotest.test_case "sched_prior persists past plane reset" `Quick test_sched_prior_persists;
    Alcotest.test_case "irrelevant tasks purged" `Quick test_irrelevant_tasks_purged;
    Alcotest.test_case "double start rejected" `Quick test_start_cycle_twice_rejected;
    Alcotest.test_case "M_T runs before M_R" `Quick test_mt_before_mr_order;
    Alcotest.test_case "empty graph cycles" `Quick test_cycle_with_empty_graph;
  ]
