(* Benchmark harness.

   Usage:
     bench/main.exe            -- all experiment tables + micro
     bench/main.exe e4         -- one experiment table
     bench/main.exe micro      -- bechamel micro-benchmarks only
     bench/main.exe tables     -- experiment tables only
     bench/main.exe list       -- registered experiment ids

   The experiment tables regenerate the paper's figures/claims — the set
   comes from the {!Dgr_harness.Experiments.all} registry, so a new
   experiment shows up here with no change to this file (see
   EXPERIMENTS.md). The micro-benchmarks measure the marking core itself
   (host wall-clock, not simulator steps); `dgr bench` is the macro
   suite (whole-machine throughput, BENCH.json). *)

open Dgr_graph
open Dgr_util
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: the marking algorithms on static random graphs.   *)
(* ------------------------------------------------------------------ *)

let graph_of_size n seed =
  let spec =
    {
      Builder.live = n;
      garbage = n / 4;
      free_pool = 16;
      avg_degree = 2.0;
      cycle_bias = 0.2;
    }
  in
  Builder.random_with_requests (Rng.create seed) spec

let bench_mark variant name g =
  Test.make ~name
    (Staged.stage (fun () ->
         Graph.reset_plane g Plane.MR;
         Graph.reset_plane g Plane.MT;
         ignore (Dgr_core.Sync_engine.mark g variant ~seeds:[ Graph.root g ])))

let bench_oracle name g =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Dgr_analysis.Reach.compute (Snapshot.take g) ~tasks:[])))

let bench_mutator name g =
  (* a burst of cooperating mutations under an in-flight M_R *)
  Test.make ~name
    (Staged.stage (fun () ->
         Graph.reset_plane g Plane.MR;
         Graph.reset_plane g Plane.MT;
         let engine = Dgr_core.Sync_engine.create g in
         let run =
           Dgr_core.Sync_engine.start engine Dgr_core.Run.Priority ~seeds:[ Graph.root g ]
         in
         let mut = Dgr_core.Sync_engine.mutator engine in
         let rng = Rng.create 5 in
         let live = Graph.live_vids g in
         let mutate _ =
           if Rng.int rng 4 = 0 then begin
             let a = Rng.choose_list rng live in
             match Graph.children g a with
             | [] -> ()
             | bs -> (
               let b = Rng.choose_list rng bs in
               match Graph.children g b with
               | [] -> ()
               | cs -> Dgr_core.Mutator.add_reference mut ~a ~b ~c:(Rng.choose_list rng cs))
           end
         in
         ignore (Dgr_core.Sync_engine.drain ~interleave:mutate engine);
         ignore run))

let bench_reduction name source =
  Test.make ~name
    (Staged.stage (fun () ->
         let g, templates = Dgr_lang.Compile.load_string ~num_pes:4 source in
         let e = Dgr_sim.Engine.create g templates in
         Dgr_sim.Engine.inject_root_demand e;
         ignore (Dgr_sim.Engine.run ~max_steps:100_000 e)))

let micro_tests () =
  let sizes = [ 1_000; 4_000; 16_000 ] in
  let marking =
    List.concat_map
      (fun n ->
        let g = graph_of_size n 42 in
        [
          bench_mark Dgr_core.Run.Basic (Printf.sprintf "mark1/%dk" (n / 1000)) g;
          bench_mark Dgr_core.Run.Priority (Printf.sprintf "mark2/%dk" (n / 1000)) g;
          bench_oracle (Printf.sprintf "oracle/%dk" (n / 1000)) g;
        ])
      sizes
  in
  let extras =
    [
      bench_mutator "mutator-coop/4k" (graph_of_size 4_000 7);
      bench_reduction "engine-fib10" (Dgr_lang.Prelude.fib 10);
      bench_reduction "engine-sumrange12" (Dgr_lang.Prelude.sum_range 12);
    ]
  in
  Test.make_grouped ~name:"dgr" (marking @ extras)

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let table =
    Table.create ~title:"micro-benchmarks (host wall clock)"
      ~columns:[ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_test ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_test [] in
    List.iter
      (fun (name, ols) ->
        let cell =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          | Some [] | None -> "-"
        in
        Table.add_row table [ name; cell ])
      (List.sort compare rows));
  Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "micro" -> run_micro ()
  | "tables" -> List.iter (fun (id, _, _) -> Dgr_harness.Experiments.run id)
                  Dgr_harness.Experiments.all
  | "list" ->
    List.iter
      (fun (id, { Dgr_harness.Experiments.title; paper_ref }, _) ->
        Printf.printf "%-4s %s (%s)\n" id title paper_ref)
      Dgr_harness.Experiments.all
  | "all" ->
    List.iter (fun (id, _, _) -> Dgr_harness.Experiments.run id)
      Dgr_harness.Experiments.all;
    run_micro ()
  | id -> Dgr_harness.Experiments.run id
